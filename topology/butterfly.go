package topology

import (
	"fmt"
	"strconv"
	"strings"

	"debruijnring/internal/butterfly"
	"debruijnring/internal/hamilton"
	"debruijnring/internal/numtheory"
)

// Butterfly adapts the d-ary wrapped butterfly network F(d,n) (§3.4) to
// the Network interface.  Nodes are (level, column) pairs coded
// level·dⁿ + column and labeled "(level,column-word)".
type Butterfly struct {
	d, n int
	b    *butterfly.Graph
}

// NewButterfly returns the F(d,n) adapter; d ≥ 2, n ≥ 1.
func NewButterfly(d, n int) (*Butterfly, error) {
	if d < 2 || n < 1 || !powFits(d, n+1, maxWordSize) {
		return nil, fmt.Errorf("topology: invalid butterfly dimensions d=%d, n=%d", d, n)
	}
	return &Butterfly{d: d, n: n, b: butterfly.New(d, n)}, nil
}

// Graph exposes the underlying butterfly model.
func (t *Butterfly) Graph() *butterfly.Graph { return t.b }

// Name implements Network.
func (t *Butterfly) Name() string { return fmt.Sprintf("butterfly(%d,%d)", t.d, t.n) }

// Nodes implements Network.
func (t *Butterfly) Nodes() int { return t.b.Size }

// Successors implements Network.
func (t *Butterfly) Successors(x int, dst []int) []int { return t.b.Successors(x, dst) }

// IsEdge implements Network.
func (t *Butterfly) IsEdge(u, v int) bool {
	if u < 0 || u >= t.b.Size || v < 0 || v >= t.b.Size {
		return false
	}
	return t.b.IsEdge(u, v)
}

// Label implements Network.
func (t *Butterfly) Label(x int) string { return t.b.String(x) }

// Parse implements Network: the inverse of Label, accepting
// "(level,word)" with or without the parentheses.
func (t *Butterfly) Parse(label string) (int, error) {
	s := strings.TrimSuffix(strings.TrimPrefix(label, "("), ")")
	level, word, ok := strings.Cut(s, ",")
	if !ok {
		return 0, fmt.Errorf("topology: bad butterfly label %q (want \"(level,word)\")", label)
	}
	k, err := strconv.Atoi(level)
	if err != nil || k < 0 || k >= t.n {
		return 0, fmt.Errorf("topology: bad butterfly level in %q", label)
	}
	col, err := t.b.Cols.Parse(word)
	if err != nil {
		return 0, err
	}
	return t.b.Node(k, col), nil
}

// EmbedRing implements RingEmbedder for link faults: the Proposition 3.5
// construction projects the faults to De Bruijn links, embeds a
// Hamiltonian cycle avoiding them and lifts it with the Φ map, tolerating
// MAX{ψ(d)−1, φ(d)} failures when gcd(d,n) = 1.  Processor faults are
// not supported (the paper's butterfly results are edge-fault only).
func (t *Butterfly) EmbedRing(f FaultSet) ([]int, *EmbedInfo, error) {
	if len(f.Nodes) > 0 {
		return nil, nil, fmt.Errorf("topology: %s does not support processor faults", t.Name())
	}
	if err := f.Validate(t); err != nil {
		return nil, nil, err
	}
	pairs := make([][2]int, len(f.Edges))
	for i, e := range f.Edges {
		pairs[i] = [2]int{e.From, e.To}
	}
	cycle, err := t.b.FaultFreeHC(pairs)
	if err != nil {
		return nil, nil, err
	}
	info := &EmbedInfo{RingLength: len(cycle), Dilation: 1}
	if len(f.Edges) <= hamilton.MaxEdgeFaults(t.d) {
		info.LowerBound = t.b.Size
	}
	return cycle, info, nil
}

// DisjointCycles implements CycleFamily: ψ(d) pairwise edge-disjoint
// Hamiltonian cycles of F(d,n) (Proposition 3.6), requiring gcd(d,n) = 1.
func (t *Butterfly) DisjointCycles() ([][]int, error) {
	return t.b.DisjointHCs()
}

// SupportsLift reports whether the Φ-map constructions apply
// (gcd(d,n) = 1).
func (t *Butterfly) SupportsLift() bool { return numtheory.GCD(t.d, t.n) == 1 }
