package topology

import (
	"fmt"
	"sync"
	"sync/atomic"

	"debruijnring/internal/debruijn"
	"debruijnring/internal/ffc"
	"debruijnring/internal/hamilton"
)

// DeBruijn adapts the d-ary De Bruijn network B(d,n) to the Network
// interface.  It embeds rings under node faults (the Chapter 2 FFC
// algorithm), link faults (the Chapter 3 edge-disjoint Hamiltonian
// family machinery), and — best-effort — mixed fault sets.
type DeBruijn struct {
	d, n int
	g    *debruijn.Graph

	// embedders pools dense FFC scratch (ffc.Embedder) across concurrent
	// EmbedRing calls, so the engine's worker loop reuses traversal
	// buffers instead of reallocating them per request.
	embedders sync.Pool

	// embedWorkers is the ffc.Embedder.Workers setting applied to every
	// pooled embedder (0 = GOMAXPROCS, 1 = serial).  Atomic because
	// FromSpec memoizes adapters across goroutines.
	embedWorkers atomic.Int32
}

// NewDeBruijn returns the B(d,n) adapter; d ≥ 2, n ≥ 1.
func NewDeBruijn(d, n int) (*DeBruijn, error) {
	if d < 2 || n < 1 || !powFits(d, n+1, maxWordSize) {
		return nil, fmt.Errorf("topology: invalid De Bruijn dimensions d=%d, n=%d", d, n)
	}
	return &DeBruijn{d: d, n: n, g: debruijn.New(d, n)}, nil
}

// D returns the arity d.
func (t *DeBruijn) D() int { return t.d }

// WordLen returns the word length n.
func (t *DeBruijn) WordLen() int { return t.n }

// Graph exposes the underlying De Bruijn model for callers needing the
// full §3.1 cycle/sequence toolkit.
func (t *DeBruijn) Graph() *debruijn.Graph { return t.g }

// SetEmbedWorkers implements EmbedWorkerSetter: it bounds the frontier
// parallelism of the Step 1.1 broadcast BFS in every embedder this
// adapter pools (0 = GOMAXPROCS, 1 = serial).  The output is
// bit-identical for every setting; safe to call concurrently with
// EmbedRing.
func (t *DeBruijn) SetEmbedWorkers(w int) { t.embedWorkers.Store(int32(w)) }

// EmbedWorkers returns the current SetEmbedWorkers setting.
func (t *DeBruijn) EmbedWorkers() int { return int(t.embedWorkers.Load()) }

// Name implements Network.
func (t *DeBruijn) Name() string { return fmt.Sprintf("debruijn(%d,%d)", t.d, t.n) }

// Nodes implements Network.
func (t *DeBruijn) Nodes() int { return t.g.Size }

// Successors implements Network.
func (t *DeBruijn) Successors(x int, dst []int) []int { return t.g.Successors(x, dst) }

// IsEdge implements Network.
func (t *DeBruijn) IsEdge(u, v int) bool { return t.g.IsEdge(u, v) }

// Label implements Network.
func (t *DeBruijn) Label(x int) string { return t.g.String(x) }

// Parse implements Network.
func (t *DeBruijn) Parse(label string) (int, error) { return t.g.Parse(label) }

// EmbedRing implements RingEmbedder.  Node-only fault sets run the FFC
// algorithm (ring length ≥ dⁿ − nf for f ≤ d−2 faults); edge-only fault
// sets run the Proposition 3.3/3.4 Hamiltonian construction (tolerance
// MAX{ψ(d)−1, φ(d)}).  Mixed sets run FFC on the node faults and fail
// if the resulting ring would traverse a faulty link.
func (t *DeBruijn) EmbedRing(f FaultSet) ([]int, *EmbedInfo, error) {
	if len(f.Nodes) == 0 && len(f.Edges) > 0 {
		// EdgeWindows validates every link itself; skip the redundant
		// FaultSet.Validate pass.
		return t.embedEdgeFaults(f.Edges)
	}
	if err := f.Validate(t); err != nil {
		return nil, nil, err
	}
	em, _ := t.embedders.Get().(*ffc.Embedder)
	if em == nil {
		em = ffc.NewEmbedder(t.g)
	}
	em.Workers = int(t.embedWorkers.Load())
	res, err := em.Embed(f.Nodes)
	t.embedders.Put(em)
	if err != nil {
		return nil, nil, err
	}
	info := &EmbedInfo{
		RingLength: len(res.Cycle),
		LowerBound: nodeFaultBound(t.g.Size, t.n, f),
		Rounds:     res.Eccentricity,
		Survivors:  res.BStarSize,
		Dilation:   1,
	}
	if len(f.Edges) > 0 {
		if !VerifyRing(t, res.Cycle, f) {
			return nil, nil, fmt.Errorf(
				"topology: %s: FFC ring around %d node faults traverses a faulty link (mixed fault sets are best-effort)",
				t.Name(), len(f.Nodes))
		}
	}
	return res.Cycle, info, nil
}

func (t *DeBruijn) embedEdgeFaults(edges []Edge) ([]int, *EmbedInfo, error) {
	windows, err := t.EdgeWindows(edges)
	if err != nil {
		return nil, nil, err
	}
	seq, err := hamilton.FaultFreeHC(t.d, t.n, windows)
	if err != nil {
		return nil, nil, err
	}
	cycle := t.g.NodesOfSequence(seq)
	info := &EmbedInfo{RingLength: len(cycle), Dilation: 1}
	if len(edges) <= hamilton.MaxEdgeFaults(t.d) {
		info.LowerBound = t.g.Size
	}
	return cycle, info, nil
}

// EdgeWindows converts faulty links to the (n+1)-digit windows the §3
// Hamiltonian machinery forbids (each link x₁…xₙ → x₂…xₙα is the window
// x₁…xₙα of the underlying circular sequence).
func (t *DeBruijn) EdgeWindows(edges []Edge) ([][]int, error) {
	windows := make([][]int, 0, len(edges))
	for _, e := range edges {
		if e.From < 0 || e.From >= t.g.Size || e.To < 0 || e.To >= t.g.Size || !t.g.IsEdge(e.From, e.To) {
			return nil, fmt.Errorf("topology: (%d,%d) is not a link of %s", e.From, e.To, t.Name())
		}
		w := make([]int, t.n+1)
		for i := 1; i <= t.n; i++ {
			w[i-1] = t.g.Digit(e.From, i)
		}
		w[t.n] = t.g.Digit(e.To, t.n)
		windows = append(windows, w)
	}
	return windows, nil
}

// DisjointCycles implements CycleFamily: the ψ(d) pairwise edge-disjoint
// Hamiltonian cycles of B(d,n), n ≥ 2.
func (t *DeBruijn) DisjointCycles() ([][]int, error) {
	fam, err := hamilton.DisjointHCs(t.d, t.n)
	if err != nil {
		return nil, err
	}
	out := make([][]int, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		out[i] = t.g.NodesOfSequence(seq)
	}
	return out, nil
}
