package topology

// Tests pinning the dense-lookup rewrite of the verification and
// cache-key hot paths to the original map/fmt-based semantics.

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

// keyReference is the pre-rewrite fmt-based Key implementation.
func keyReference(f FaultSet) string {
	c := f.Canonical()
	var b strings.Builder
	b.WriteString("n:")
	for i, v := range c.Nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(";e:")
	for i, e := range c.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", e.From, e.To)
	}
	return b.String()
}

func TestKeyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	cases := []FaultSet{
		{},
		{Nodes: []int{5}},
		{Nodes: []int{3, 1, 3, 0}},
		{Edges: []Edge{{2, 1}, {0, 9}, {2, 1}}},
		{Nodes: []int{7, 7}, Edges: []Edge{{1, 2}}},
	}
	for i := 0; i < 50; i++ {
		var f FaultSet
		for j := rng.IntN(40); j > 0; j-- {
			f.Nodes = append(f.Nodes, rng.IntN(1000))
		}
		for j := rng.IntN(40); j > 0; j-- {
			f.Edges = append(f.Edges, Edge{rng.IntN(1000), rng.IntN(1000)})
		}
		cases = append(cases, f)
	}
	for _, f := range cases {
		if got, want := f.Key(), keyReference(f); got != want {
			t.Fatalf("Key mismatch for %+v:\n got %q\nwant %q", f, got, want)
		}
	}
}

// verifyRingReference is the pre-rewrite map-based VerifyRing.
func verifyRingReference(net Network, cycle []int, f FaultSet) bool {
	if !IsRing(net, cycle) {
		return false
	}
	badNode := f.NodeSet()
	badEdge := f.EdgeSet()
	_, undirected := net.(undirectedNetwork)
	k := len(cycle)
	for i, v := range cycle {
		if badNode[v] {
			return false
		}
		if len(badEdge) > 0 {
			w := cycle[(i+1)%k]
			if badEdge[Edge{From: v, To: w}] {
				return false
			}
			if undirected && badEdge[Edge{From: w, To: v}] {
				return false
			}
		}
	}
	return true
}

// TestVerifyRingMatchesReference exercises both the small-set linear
// scans and the pooled-set / sorted-edge paths (fault sets larger than
// smallFaultCutoff) against the map implementation, on a ring long
// enough to trigger the dense cycle-dedup path as well.
func TestVerifyRingMatchesReference(t *testing.T) {
	net, err := NewDeBruijn(2, 8) // 256 nodes, ring length > 64
	if err != nil {
		t.Fatal(err)
	}
	ring, _, err := net.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 200; trial++ {
		var f FaultSet
		nNodes := rng.IntN(2 * smallFaultCutoff)
		for j := 0; j < nNodes; j++ {
			// Mostly misses, occasionally out of range.
			f.Nodes = append(f.Nodes, rng.IntN(net.Nodes()+10)-5)
		}
		nEdges := rng.IntN(2 * smallFaultCutoff)
		for j := 0; j < nEdges; j++ {
			u := rng.IntN(net.Nodes())
			f.Edges = append(f.Edges, Edge{u, (u*2 + rng.IntN(2)) % net.Nodes()})
		}
		cycle := ring
		switch trial % 4 {
		case 1: // corrupt: duplicate node
			cycle = append([]int(nil), ring...)
			cycle[10] = cycle[40]
		case 2: // corrupt: short prefix (not a cycle)
			cycle = ring[:50]
		case 3: // faulty node guaranteed on the ring
			f.Nodes = append(f.Nodes, ring[rng.IntN(len(ring))])
		}
		got := VerifyRing(net, cycle, f)
		want := verifyRingReference(net, cycle, f)
		if got != want {
			t.Fatalf("trial %d: VerifyRing = %v, reference = %v (faults %+v)", trial, got, want, f)
		}
	}
}

func TestVerifyRingLargeFaultSets(t *testing.T) {
	net, err := NewDeBruijn(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ring, _, err := net.EmbedRing(FaultSet{})
	if err != nil {
		t.Fatal(err)
	}
	// A large all-miss node set exercises the pooled dense set.
	var f FaultSet
	for v := 0; v < net.Nodes(); v++ {
		off := false
		for _, x := range ring {
			if x == v {
				off = true
				break
			}
		}
		if !off {
			f.Nodes = append(f.Nodes, v)
		}
	}
	if len(f.Nodes) != 0 {
		t.Fatalf("fault-free embedding missed %d nodes", len(f.Nodes))
	}
	// Large edge set not on the ring: reversed ring edges are absent from
	// the directed De Bruijn ring.
	for i := range ring {
		f.Edges = append(f.Edges, Edge{ring[(i+1)%len(ring)], ring[i]})
	}
	if !VerifyRing(net, ring, f) {
		t.Error("ring rejected although no listed fault lies on it")
	}
	f.Edges = append(f.Edges, Edge{ring[0], ring[1]})
	if VerifyRing(net, ring, f) {
		t.Error("ring accepted although one of its links is faulty")
	}
}

func TestFromSpecMemoizes(t *testing.T) {
	a, err := FromSpec("debruijn(3,5)")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSpec(" DeBruijn( 3 , 5 ) ")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("equivalent specs returned distinct instances")
	}
	if _, err := FromSpec("debruijn(0,0)"); err == nil {
		t.Error("invalid spec accepted")
	}
}
