package topology

import (
	"math/rand"
	"testing"
)

// TestFaultSetUnionIncremental grows a fault set one batch at a time —
// the session-subsystem access pattern — and checks that duplicates
// collapse, order does not matter, and the accumulated Key is stable.
func TestFaultSetUnionIncremental(t *testing.T) {
	a := NodeFaults(3, 1)
	b := a.Union(NodeFaults(1, 7)) // 1 is a duplicate add
	if got := b.Key(); got != "n:1,3,7;e:" {
		t.Errorf("Union key = %q", got)
	}
	// Adding an already-present fault is a no-op on the canonical set.
	c := b.Union(NodeFaults(3))
	if c.Key() != b.Key() {
		t.Errorf("duplicate add changed key: %q != %q", c.Key(), b.Key())
	}
	// Union is order-insensitive.
	x := NodeFaults(5).Union(EdgeFaults(Edge{From: 2, To: 4}))
	y := EdgeFaults(Edge{From: 2, To: 4}).Union(NodeFaults(5))
	if x.Key() != y.Key() {
		t.Errorf("order-sensitive union: %q != %q", x.Key(), y.Key())
	}
	// Empty operands are identities.
	if got := (FaultSet{}).Union(FaultSet{}); !got.IsEmpty() {
		t.Errorf("empty union = %+v", got)
	}
	if got := b.Union(FaultSet{}).Key(); got != b.Key() {
		t.Errorf("union with empty changed key: %q", got)
	}
}

// TestFaultSetLinkThenNodeSameEndpoint adds a link fault and then a node
// fault on one of its endpoints: both must survive as independent faults
// (a node fault does not subsume link faults), and the combined set must
// validate and verify like any other.
func TestFaultSetLinkThenNodeSameEndpoint(t *testing.T) {
	net, err := NewDeBruijn(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	link := Edge{From: 1, To: 3} // 001 → 011
	fs := EdgeFaults(link)
	fs = fs.Union(NodeFaults(1)) // endpoint of the faulty link fails too
	if len(fs.Nodes) != 1 || len(fs.Edges) != 1 {
		t.Fatalf("combined set = %+v, want 1 node + 1 edge", fs)
	}
	if err := fs.Validate(net); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The reverse order accumulates to the same canonical set.
	rev := NodeFaults(1).Union(EdgeFaults(link))
	if rev.Key() != fs.Key() {
		t.Errorf("link-then-node vs node-then-link: %q != %q", fs.Key(), rev.Key())
	}
	// A ring through node 1 fails on the node fault alone; a ring using
	// the link fails even if node 1 is replaced by a healthy detour.
	ring, _, err := net.EmbedRing(fs)
	if err != nil {
		t.Fatalf("EmbedRing: %v", err)
	}
	if !VerifyRing(net, ring, fs) {
		t.Error("embedded ring fails combined verification")
	}
}

// TestFaultSetMinus checks the new-faults filter of incremental adds.
func TestFaultSetMinus(t *testing.T) {
	have := NodeFaults(1, 2).Union(EdgeFaults(Edge{From: 0, To: 1}))
	add := FaultSet{Nodes: []int{2, 3, 3}, Edges: []Edge{{From: 0, To: 1}, {From: 2, To: 5}}}
	got := add.Minus(have)
	if got.Key() != "n:3;e:2-5" {
		t.Errorf("Minus = %q", got.Key())
	}
	if !have.Minus(have).IsEmpty() {
		t.Error("f.Minus(f) not empty")
	}
	// Minus does not subsume link faults by endpoint node faults.
	keep := EdgeFaults(Edge{From: 1, To: 2}).Minus(NodeFaults(1, 2))
	if len(keep.Edges) != 1 {
		t.Errorf("edge fault subsumed by node faults: %+v", keep)
	}
}

// TestFaultSetKeyStableAcrossAddOrder grows the same fault population in
// many random orders and batch splits; every path must canonicalize to
// one Key.
// TestFaultSetMinusEdgeCases covers the heal-path corners: removing
// faults that are not present, emptying the set entirely, and mixed
// node+link removal in one batch.
func TestFaultSetMinusEdgeCases(t *testing.T) {
	e1 := Edge{From: 0, To: 1}
	e2 := Edge{From: 2, To: 3}
	full := FaultSet{Nodes: []int{4, 7, 9}, Edges: []Edge{e1, e2}}

	// Removing absent faults changes nothing.
	got := full.Minus(FaultSet{Nodes: []int{5, 6}, Edges: []Edge{{From: 9, To: 9}}})
	if got.Key() != full.Canonical().Key() {
		t.Errorf("minus of absent faults changed the set: %s", got.Key())
	}

	// Removing everything (plus extras) empties the set.
	got = full.Minus(FaultSet{Nodes: []int{4, 7, 9, 100}, Edges: []Edge{e1, e2, {From: 8, To: 8}}})
	if !got.IsEmpty() {
		t.Errorf("minus of a superset left %s", got.Key())
	}

	// The empty set minus anything stays empty.
	if got := (FaultSet{}).Minus(full); !got.IsEmpty() {
		t.Errorf("empty minus full = %s", got.Key())
	}

	// Mixed node+link removal in one batch touches both classes
	// independently: healing node 4 does not heal links at node 4.
	mixed := FaultSet{Nodes: []int{4}, Edges: []Edge{{From: 4, To: 8}}}
	base := FaultSet{Nodes: []int{4, 7}, Edges: []Edge{{From: 4, To: 8}, e1}}
	got = base.Minus(FaultSet{Nodes: []int{4}})
	if len(got.Nodes) != 1 || got.Nodes[0] != 7 || len(got.Edges) != 2 {
		t.Errorf("node heal bled into links: %s", got.Key())
	}
	got = base.Minus(mixed)
	if len(got.Nodes) != 1 || got.Nodes[0] != 7 || len(got.Edges) != 1 || got.Edges[0] != e1 {
		t.Errorf("mixed removal = %s", got.Key())
	}

	// Duplicates in the removal batch are harmless.
	got = full.Minus(FaultSet{Nodes: []int{4, 4, 4}})
	if len(got.Nodes) != 2 {
		t.Errorf("duplicate removal = %s", got.Key())
	}

	// Minus is the inverse of Union for disjoint sets.
	add := FaultSet{Nodes: []int{50}, Edges: []Edge{{From: 6, To: 12}}}
	if got := full.Union(add).Minus(add); got.Key() != full.Canonical().Key() {
		t.Errorf("union-then-minus round trip = %s", got.Key())
	}
}

func TestFaultSetKeyStableAcrossAddOrder(t *testing.T) {
	nodes := []int{9, 4, 12, 0, 7}
	edges := []Edge{{From: 1, To: 2}, {From: 2, To: 1}, {From: 0, To: 5}}
	want := FaultSet{Nodes: nodes, Edges: edges}.Canonical().Key()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(nodes))
		acc := FaultSet{}
		for _, i := range perm {
			acc = acc.Union(NodeFaults(nodes[i]))
			if rng.Intn(2) == 0 { // interleave a duplicate add
				acc = acc.Union(NodeFaults(nodes[perm[0]]))
			}
		}
		for _, i := range rng.Perm(len(edges)) {
			acc = acc.Union(EdgeFaults(edges[i]))
		}
		if got := acc.Key(); got != want {
			t.Fatalf("trial %d: key %q, want %q", trial, got, want)
		}
	}
}
