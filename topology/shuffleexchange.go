package topology

import (
	"fmt"

	"debruijnring/internal/shuffleexchange"
)

// ShuffleExchange adapts the d-ary shuffle-exchange network SE(d,n) to
// the Network interface.  SE(d,n) shares B(d,n)'s node set; its links
// are the (undirected) shuffle/unshuffle rotations plus the exchange
// links rewriting the last digit.  Ring embeddings carry the Chapter 2
// FFC ring across the shuffle∘exchange factorization with dilation ≤ 2,
// so EmbedRing returns a closed walk rather than a simple cycle.
type ShuffleExchange struct {
	d, n int
	g    *shuffleexchange.Graph
}

// NewShuffleExchange returns the SE(d,n) adapter; d ≥ 2, n ≥ 1.
func NewShuffleExchange(d, n int) (*ShuffleExchange, error) {
	if d < 2 || n < 1 || !powFits(d, n+1, maxWordSize) {
		return nil, fmt.Errorf("topology: invalid shuffle-exchange dimensions d=%d, n=%d", d, n)
	}
	return &ShuffleExchange{d: d, n: n, g: shuffleexchange.New(d, n)}, nil
}

// Name implements Network.
func (t *ShuffleExchange) Name() string { return fmt.Sprintf("shuffleexchange(%d,%d)", t.d, t.n) }

// Nodes implements Network.
func (t *ShuffleExchange) Nodes() int { return t.g.Size }

// Successors implements Network: all SE neighbors (undirected).
func (t *ShuffleExchange) Successors(x int, dst []int) []int { return t.g.Neighbors(x, dst) }

// IsEdge implements Network.
func (t *ShuffleExchange) IsEdge(u, v int) bool {
	if u < 0 || u >= t.g.Size || v < 0 || v >= t.g.Size {
		return false
	}
	return t.g.IsEdge(u, v)
}

// Label implements Network.
func (t *ShuffleExchange) Label(x int) string { return t.g.String(x) }

// Parse implements Network.
func (t *ShuffleExchange) Parse(label string) (int, error) { return t.g.Parse(label) }

// EmbedRing implements RingEmbedder for node faults: the FFC ring of the
// underlying De Bruijn network transferred edge-by-edge, yielding a
// closed walk with dilation ≤ 2 and congestion 1 per directed channel
// that stays clear of faulty necklaces.  Link faults are not supported.
func (t *ShuffleExchange) EmbedRing(f FaultSet) ([]int, *EmbedInfo, error) {
	if len(f.Edges) > 0 {
		return nil, nil, fmt.Errorf("topology: %s does not support link faults", t.Name())
	}
	if err := f.Validate(t); err != nil {
		return nil, nil, err
	}
	ring, walk, err := t.EmbedWalk(f.Nodes)
	if err != nil {
		return nil, nil, err
	}
	dilation := 1
	if len(walk) > len(ring) {
		dilation = 2
	}
	return walk, &EmbedInfo{
		RingLength: len(walk),
		LowerBound: nodeFaultBound(t.g.Size, t.n, f), // dⁿ − nf for the carried ring
		Survivors:  len(ring),
		Dilation:   dilation,
	}, nil
}

// EmbedWalk returns both views of the embedding: the underlying De
// Bruijn ring processors and the SE walk realizing it.
func (t *ShuffleExchange) EmbedWalk(faults []int) (ring, walk []int, err error) {
	emb, err := shuffleexchange.EmbedRing(t.d, t.n, faults)
	if err != nil {
		return nil, nil, err
	}
	return emb.Ring, emb.Walk, nil
}

// undirected marks SE(d,n)'s links as orientation-free for fault checks.
func (t *ShuffleExchange) undirected() {}

// isValidCycle refines the structural test for dilation-2 embeddings:
// the walk is closed and every hop a network link, processors may repeat
// (rotation intermediates lie on the ring), but no directed channel is
// used twice (congestion 1).
func (t *ShuffleExchange) isValidCycle(cycle []int) bool {
	k := len(cycle)
	if k == 0 {
		return false
	}
	used := make(map[Edge]bool, k)
	for i, x := range cycle {
		if x < 0 || x >= t.g.Size {
			return false
		}
		y := cycle[(i+1)%k]
		if !t.g.IsEdge(x, y) {
			return false
		}
		e := Edge{From: x, To: y}
		if used[e] {
			return false
		}
		used[e] = true
	}
	return true
}
