// Package topology defines the topology-generic surface of the
// reproduction: a Network interface abstracting the structural queries
// every fault-tolerant embedding needs (node count, successor iteration,
// label/parse, edge test), a unified FaultSet covering node and link
// failures together, and a single shared verification codepath replacing
// the per-topology Verify loops of the original API.
//
// Five adapters implement the interface — De Bruijn B(d,n), Kautz K(d,n),
// shuffle-exchange SE(d,n), wrapped butterfly F(d,n) and the binary
// hypercube Q_n — so that ring-embedding requests, verification and the
// engine package's caching and batching work identically across all of
// them.  Adapters that know how to embed fault-free rings additionally
// satisfy RingEmbedder; those carrying edge-disjoint Hamiltonian cycle
// families satisfy CycleFamily.
package topology

import (
	"sync"

	"debruijnring/internal/dense"
)

// Network is a processor interconnection topology.  Implementations are
// immutable after construction and safe for concurrent use.
type Network interface {
	// Name identifies the topology instance, e.g. "debruijn(3,3)".  It is
	// stable across processes and usable as a cache-key component.
	Name() string
	// Nodes returns the processor count; node ids are 0 … Nodes()−1.
	Nodes() int
	// Successors appends the out-neighbors of x to dst (reusing its
	// backing array) and returns the slice.  Undirected topologies list
	// every neighbor.
	Successors(x int, dst []int) []int
	// IsEdge reports whether (u, v) is a network link.
	IsEdge(u, v int) bool
	// Label renders a node id as its human-readable processor label.
	Label(x int) string
	// Parse is the inverse of Label.
	Parse(label string) (int, error)
}

// EmbedInfo reports the bookkeeping of a ring embedding, normalized
// across topologies.  Fields that a topology cannot populate are zero.
type EmbedInfo struct {
	// RingLength is len of the returned ring.  For unit-dilation
	// embeddings that is the processor count; for dilation-2 closed
	// walks (shuffle-exchange) it counts walk hops and can exceed the
	// network size — Survivors then holds the carried processor count.
	RingLength int
	// LowerBound is the guaranteed minimum ring length for a successful
	// embedding under this (deduplicated) fault load — dⁿ − nf for De
	// Bruijn node faults, the network size for within-tolerance link
	// faults.  0 when no bound applies or the fault load makes it
	// vacuous.
	LowerBound int
	Rounds     int // broadcast rounds / eccentricity of the construction, where meaningful
	Survivors  int // processors in the surviving component the ring covers, where meaningful
	Dilation   int // longest network path realizing one ring hop (≥ 1)
}

// nodeFaultBound returns the dⁿ − nf guarantee on the length of a
// successful necklace-removal embedding (every faulty necklace has at
// most n nodes), computed from the deduplicated fault count and clamped
// at 0 when the fault load makes it vacuous.
func nodeFaultBound(size, n int, f FaultSet) int {
	b := size - n*len(f.Canonical().Nodes)
	if b < 0 {
		return 0
	}
	return b
}

// RingEmbedder is a Network that can embed a fault-free ring around a
// fault set.  All adapters in this package implement it; unsupported
// fault classes (e.g. node faults in a butterfly) return an error rather
// than panicking, so a single codepath can serve every topology.
type RingEmbedder interface {
	Network
	// EmbedRing returns a ring (cycle, or closed walk for dilation-2
	// embeddings) of the network avoiding every fault in f, together
	// with embedding statistics.
	EmbedRing(f FaultSet) ([]int, *EmbedInfo, error)
}

// EmbedWorkerSetter is implemented by adapters whose EmbedRing can
// shard work across a worker pool without changing its output (the
// De Bruijn FFC broadcast).  0 means GOMAXPROCS, 1 serial; engines
// apply their configured worker count through this interface and
// adapters without internal parallelism simply don't implement it.
type EmbedWorkerSetter interface {
	SetEmbedWorkers(workers int)
}

// CycleFamily is a Network carrying a family of pairwise edge-disjoint
// Hamiltonian cycles.
type CycleFamily interface {
	Network
	// DisjointCycles returns pairwise edge-disjoint Hamiltonian cycles.
	DisjointCycles() ([][]int, error)
}

// undirectedNetwork marks adapters whose links are undirected: a faulty
// link blocks traffic in both orientations.
type undirectedNetwork interface {
	undirected()
}

// Undirected reports whether net's links are undirected, i.e. a faulty
// link blocks traffic in both orientations.  Repair and verification
// codepaths use it to decide which ring hops a link fault severs.
func Undirected(net Network) bool {
	_, ok := net.(undirectedNetwork)
	return ok
}

// cycleChecker lets an adapter refine the generic structural cycle test,
// e.g. to admit the dilation-2 closed walks of shuffle-exchange
// embeddings or to reject the degenerate 2-cycles of undirected graphs.
type cycleChecker interface {
	isValidCycle(cycle []int) bool
}

// IsRing reports whether cycle is a valid embedded ring of net: nonempty,
// nodes in range and pairwise distinct, every consecutive pair (including
// the wrap-around) a network link.  Adapters with a refined notion of
// ring (closed walks, undirected degeneracies) override the structural
// test; fault avoidance is always checked by the shared loop in
// VerifyRing.
func IsRing(net Network, cycle []int) bool {
	if cc, ok := net.(cycleChecker); ok {
		return cc.isValidCycle(cycle)
	}
	return isSimpleCycle(net, cycle)
}

func isSimpleCycle(net Network, cycle []int) bool {
	k := len(cycle)
	if k == 0 {
		return false
	}
	size := net.Nodes()
	if k <= 64 {
		// Small rings: a quadratic scan avoids touching scratch at all.
		for i, x := range cycle {
			if x < 0 || x >= size {
				return false
			}
			for _, y := range cycle[:i] {
				if y == x {
					return false
				}
			}
			if !net.IsEdge(x, cycle[(i+1)%k]) {
				return false
			}
		}
		return true
	}
	seen := getScratchSet(size)
	defer putScratchSet(seen)
	for i, x := range cycle {
		if x < 0 || x >= size || !seen.Add(x) {
			return false
		}
		if !net.IsEdge(x, cycle[(i+1)%k]) {
			return false
		}
	}
	return true
}

// scratchSets pools the epoch-stamped node sets behind verification so a
// steady request stream stops allocating O(size) bookkeeping per call —
// a pooled set's O(1) epoch reset replaces the per-call map of the
// original implementation.
var scratchSets = sync.Pool{New: func() any { return new(dense.Set) }}

func getScratchSet(size int) *dense.Set {
	s := scratchSets.Get().(*dense.Set)
	s.Reset(size)
	return s
}

func putScratchSet(s *dense.Set) { scratchSets.Put(s) }

// VerifyRing reports whether cycle is a valid embedded ring of net that
// avoids every fault in f — the single shared implementation of the
// fault-avoidance loops previously duplicated across the De Bruijn,
// edge-fault and butterfly APIs.  Fault membership runs on dense lookups
// with a small-set fallback instead of per-call maps.
func VerifyRing(net Network, cycle []int, f FaultSet) bool {
	if !IsRing(net, cycle) {
		return false
	}
	badNode := makeNodeLookup(f.Nodes, net.Nodes())
	defer badNode.release()
	badEdge := makeEdgeLookup(f.Edges)
	_, undirected := net.(undirectedNetwork)
	k := len(cycle)
	for i, v := range cycle {
		if badNode.has(v) {
			return false
		}
		if len(f.Edges) > 0 {
			w := cycle[(i+1)%k]
			if badEdge.has(Edge{From: v, To: w}) {
				return false
			}
			// On undirected topologies the failed wire blocks both
			// orientations.
			if undirected && badEdge.has(Edge{From: w, To: v}) {
				return false
			}
		}
	}
	return true
}

// VerifyHamiltonian reports whether cycle is a Hamiltonian ring of net
// avoiding every fault in f.
func VerifyHamiltonian(net Network, cycle []int, f FaultSet) bool {
	return len(cycle) == net.Nodes() && VerifyRing(net, cycle, f)
}
