package topology

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is a directed network link from one processor to another.
type Edge struct {
	From, To int
}

// FaultSet is a unified description of failed components: processors
// (Nodes) and links (Edges) together, replacing the ad-hoc []int / []Edge
// split of the original per-topology APIs.  The zero value is the empty
// fault set.  FaultSet values are treated as immutable by this package.
type FaultSet struct {
	Nodes []int
	Edges []Edge
}

// NodeFaults returns a fault set of failed processors.
func NodeFaults(nodes ...int) FaultSet { return FaultSet{Nodes: nodes} }

// EdgeFaults returns a fault set of failed links.
func EdgeFaults(edges ...Edge) FaultSet { return FaultSet{Edges: edges} }

// IsEmpty reports whether no component has failed.
func (f FaultSet) IsEmpty() bool { return len(f.Nodes) == 0 && len(f.Edges) == 0 }

// Canonical returns a copy with nodes and edges sorted and deduplicated.
// Two fault sets describing the same failures canonicalize identically.
func (f FaultSet) Canonical() FaultSet {
	var out FaultSet
	if len(f.Nodes) > 0 {
		out.Nodes = append([]int(nil), f.Nodes...)
		sort.Ints(out.Nodes)
		out.Nodes = dedupInts(out.Nodes)
	}
	if len(f.Edges) > 0 {
		out.Edges = append([]Edge(nil), f.Edges...)
		sort.Slice(out.Edges, func(i, j int) bool {
			if out.Edges[i].From != out.Edges[j].From {
				return out.Edges[i].From < out.Edges[j].From
			}
			return out.Edges[i].To < out.Edges[j].To
		})
		out.Edges = dedupEdges(out.Edges)
	}
	return out
}

// Key renders the canonicalized fault set as a deterministic string,
// suitable for memoization keyed by (topology, fault set).
func (f FaultSet) Key() string {
	c := f.Canonical()
	var b strings.Builder
	b.WriteString("n:")
	for i, v := range c.Nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteString(";e:")
	for i, e := range c.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d-%d", e.From, e.To)
	}
	return b.String()
}

// NodeSet returns the failed processors as a membership map.
func (f FaultSet) NodeSet() map[int]bool {
	m := make(map[int]bool, len(f.Nodes))
	for _, v := range f.Nodes {
		m[v] = true
	}
	return m
}

// EdgeSet returns the failed links as a membership map.
func (f FaultSet) EdgeSet() map[Edge]bool {
	m := make(map[Edge]bool, len(f.Edges))
	for _, e := range f.Edges {
		m[e] = true
	}
	return m
}

// Validate checks every fault against the network: node ids in range and
// edge faults actual network links.
func (f FaultSet) Validate(net Network) error {
	size := net.Nodes()
	for _, v := range f.Nodes {
		if v < 0 || v >= size {
			return fmt.Errorf("topology: faulty node %d out of range [0,%d) in %s", v, size, net.Name())
		}
	}
	for _, e := range f.Edges {
		if e.From < 0 || e.From >= size || e.To < 0 || e.To >= size {
			return fmt.Errorf("topology: faulty link (%d,%d) out of range in %s", e.From, e.To, net.Name())
		}
		if !net.IsEdge(e.From, e.To) {
			return fmt.Errorf("topology: (%s,%s) is not a link of %s",
				net.Label(e.From), net.Label(e.To), net.Name())
		}
	}
	return nil
}

// ParseFaults resolves processor labels and labeled links into a
// FaultSet — the shared front-end codepath for the HTTP service and the
// batch CLI.
func ParseFaults(net Network, nodeLabels []string, edgeLabels [][2]string) (FaultSet, error) {
	var fs FaultSet
	for _, label := range nodeLabels {
		v, err := net.Parse(label)
		if err != nil {
			return FaultSet{}, err
		}
		fs.Nodes = append(fs.Nodes, v)
	}
	for _, e := range edgeLabels {
		from, err := net.Parse(e[0])
		if err != nil {
			return FaultSet{}, err
		}
		to, err := net.Parse(e[1])
		if err != nil {
			return FaultSet{}, err
		}
		fs.Edges = append(fs.Edges, Edge{From: from, To: to})
	}
	return fs, nil
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupEdges(s []Edge) []Edge {
	out := s[:0]
	for i, e := range s {
		if i == 0 || e != s[i-1] {
			out = append(out, e)
		}
	}
	return out
}
