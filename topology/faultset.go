package topology

import (
	"fmt"
	"sort"
	"strconv"

	"debruijnring/internal/dense"
)

// Edge is a directed network link from one processor to another.
type Edge struct {
	From, To int
}

// FaultSet is a unified description of failed components: processors
// (Nodes) and links (Edges) together, replacing the ad-hoc []int / []Edge
// split of the original per-topology APIs.  The zero value is the empty
// fault set.  FaultSet values are treated as immutable by this package.
type FaultSet struct {
	Nodes []int
	Edges []Edge
}

// NodeFaults returns a fault set of failed processors.
func NodeFaults(nodes ...int) FaultSet { return FaultSet{Nodes: nodes} }

// EdgeFaults returns a fault set of failed links.
func EdgeFaults(edges ...Edge) FaultSet { return FaultSet{Edges: edges} }

// IsEmpty reports whether no component has failed.
func (f FaultSet) IsEmpty() bool { return len(f.Nodes) == 0 && len(f.Edges) == 0 }

// Canonical returns a copy with nodes and edges sorted and deduplicated.
// Two fault sets describing the same failures canonicalize identically.
func (f FaultSet) Canonical() FaultSet {
	var out FaultSet
	if len(f.Nodes) > 0 {
		out.Nodes = append([]int(nil), f.Nodes...)
		sort.Ints(out.Nodes)
		out.Nodes = dedupInts(out.Nodes)
	}
	if len(f.Edges) > 0 {
		out.Edges = append([]Edge(nil), f.Edges...)
		sort.Slice(out.Edges, func(i, j int) bool {
			if out.Edges[i].From != out.Edges[j].From {
				return out.Edges[i].From < out.Edges[j].From
			}
			return out.Edges[i].To < out.Edges[j].To
		})
		out.Edges = dedupEdges(out.Edges)
	}
	return out
}

// Union returns the canonical union of f and g — the merge operation
// behind incrementally growing fault sets (session fault streams add
// faults batch by batch and never remove them).  Duplicates across the
// two operands collapse, so Union is idempotent and order-insensitive:
// f.Union(g).Key() == g.Union(f).Key().
func (f FaultSet) Union(g FaultSet) FaultSet {
	var out FaultSet
	if len(f.Nodes)+len(g.Nodes) > 0 {
		out.Nodes = make([]int, 0, len(f.Nodes)+len(g.Nodes))
		out.Nodes = append(append(out.Nodes, f.Nodes...), g.Nodes...)
	}
	if len(f.Edges)+len(g.Edges) > 0 {
		out.Edges = make([]Edge, 0, len(f.Edges)+len(g.Edges))
		out.Edges = append(append(out.Edges, f.Edges...), g.Edges...)
	}
	return out.Canonical()
}

// Minus returns the canonical subset of f not already present in g: the
// genuinely new faults of an incremental add on top of the accumulated
// set g.  Node and edge faults are independent — a node fault does not
// absorb link faults touching the same endpoint (the ring may need to
// avoid the link in a direction the node removal alone would not cover;
// callers that want subsumption filter explicitly).
func (f FaultSet) Minus(g FaultSet) FaultSet {
	seen := g.NodeSet()
	seenE := g.EdgeSet()
	var out FaultSet
	for _, v := range f.Nodes {
		if !seen[v] {
			out.Nodes = append(out.Nodes, v)
		}
	}
	for _, e := range f.Edges {
		if !seenE[e] {
			out.Edges = append(out.Edges, e)
		}
	}
	return out.Canonical()
}

// Key renders the canonicalized fault set as a deterministic string,
// suitable for memoization keyed by (topology, fault set).  It is
// computed on every engine cache lookup, so the digits are appended with
// strconv onto one preallocated buffer instead of through fmt.
func (f FaultSet) Key() string {
	c := f.Canonical()
	// "n:" + ";e:" + per-fault digits (≤ 20 each) and separators.
	buf := make([]byte, 0, 8+21*len(c.Nodes)+42*len(c.Edges))
	buf = append(buf, 'n', ':')
	for i, v := range c.Nodes {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	buf = append(buf, ';', 'e', ':')
	for i, e := range c.Edges {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(e.From), 10)
		buf = append(buf, '-')
		buf = strconv.AppendInt(buf, int64(e.To), 10)
	}
	return string(buf)
}

// smallFaultCutoff is the fault-set size under which a linear scan of
// the slice beats preparing an indexed lookup.
const smallFaultCutoff = 16

// nodeLookup is an allocation-light membership test over failed
// processors: a linear scan for small sets, a pooled epoch-stamped dense
// set for large ones (see VerifyRing).
type nodeLookup struct {
	nodes []int
	set   *dense.Set // nil for small sets
}

// makeNodeLookup indexes the failed processors of a size-node network.
// When it returns a pooled set, release must be called after use.
func makeNodeLookup(nodes []int, size int) nodeLookup {
	l := nodeLookup{nodes: nodes}
	if len(nodes) > smallFaultCutoff {
		l.set = getScratchSet(size)
		for _, v := range nodes {
			if v >= 0 && v < size { // out-of-range faults match nothing
				l.set.Add(v)
			}
		}
	}
	return l
}

func (l nodeLookup) has(v int) bool {
	if l.set != nil {
		return l.set.Has(v)
	}
	for _, x := range l.nodes {
		if x == v {
			return true
		}
	}
	return false
}

func (l nodeLookup) release() {
	if l.set != nil {
		putScratchSet(l.set)
	}
}

// edgeLookup is the link-fault analogue: linear scan for small sets, a
// sorted copy with binary search for large ones.
type edgeLookup struct {
	edges  []Edge
	sorted bool
}

func makeEdgeLookup(edges []Edge) edgeLookup {
	l := edgeLookup{edges: edges}
	if len(edges) > smallFaultCutoff {
		l.edges = append([]Edge(nil), edges...)
		sort.Slice(l.edges, func(i, j int) bool {
			if l.edges[i].From != l.edges[j].From {
				return l.edges[i].From < l.edges[j].From
			}
			return l.edges[i].To < l.edges[j].To
		})
		l.sorted = true
	}
	return l
}

func (l edgeLookup) has(e Edge) bool {
	if !l.sorted {
		for _, x := range l.edges {
			if x == e {
				return true
			}
		}
		return false
	}
	i := sort.Search(len(l.edges), func(i int) bool {
		if l.edges[i].From != e.From {
			return l.edges[i].From > e.From
		}
		return l.edges[i].To >= e.To
	})
	return i < len(l.edges) && l.edges[i] == e
}

// NodeSet returns the failed processors as a membership map.
func (f FaultSet) NodeSet() map[int]bool {
	m := make(map[int]bool, len(f.Nodes))
	for _, v := range f.Nodes {
		m[v] = true
	}
	return m
}

// EdgeSet returns the failed links as a membership map.
func (f FaultSet) EdgeSet() map[Edge]bool {
	m := make(map[Edge]bool, len(f.Edges))
	for _, e := range f.Edges {
		m[e] = true
	}
	return m
}

// Validate checks every fault against the network: node ids in range and
// edge faults actual network links.
func (f FaultSet) Validate(net Network) error {
	size := net.Nodes()
	for _, v := range f.Nodes {
		if v < 0 || v >= size {
			return fmt.Errorf("topology: faulty node %d out of range [0,%d) in %s", v, size, net.Name())
		}
	}
	for _, e := range f.Edges {
		if e.From < 0 || e.From >= size || e.To < 0 || e.To >= size {
			return fmt.Errorf("topology: faulty link (%d,%d) out of range in %s", e.From, e.To, net.Name())
		}
		if !net.IsEdge(e.From, e.To) {
			return fmt.Errorf("topology: (%s,%s) is not a link of %s",
				net.Label(e.From), net.Label(e.To), net.Name())
		}
	}
	return nil
}

// ParseFaults resolves processor labels and labeled links into a
// FaultSet — the shared front-end codepath for the HTTP service and the
// batch CLI.
func ParseFaults(net Network, nodeLabels []string, edgeLabels [][2]string) (FaultSet, error) {
	var fs FaultSet
	for _, label := range nodeLabels {
		v, err := net.Parse(label)
		if err != nil {
			return FaultSet{}, err
		}
		fs.Nodes = append(fs.Nodes, v)
	}
	for _, e := range edgeLabels {
		from, err := net.Parse(e[0])
		if err != nil {
			return FaultSet{}, err
		}
		to, err := net.Parse(e[1])
		if err != nil {
			return FaultSet{}, err
		}
		fs.Edges = append(fs.Edges, Edge{From: from, To: to})
	}
	return fs, nil
}

func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func dedupEdges(s []Edge) []Edge {
	out := s[:0]
	for i, e := range s {
		if i == 0 || e != s[i-1] {
			out = append(out, e)
		}
	}
	return out
}
