package debruijnring

import (
	"fmt"

	"debruijnring/internal/hamilton"
)

// Edge is a directed network link from one processor to another.
type Edge struct {
	From, To int
}

// Psi returns ψ(d), the guaranteed number of pairwise edge-disjoint
// Hamiltonian cycles of B(d,n) for n ≥ 2 (Table 3.1).  ψ(d) = d−1 when d
// is a power of two, which is optimal.
func Psi(d int) int { return hamilton.Psi(d) }

// Phi returns φ(d) = Σ pᵢ^eᵢ − 2k over the prime factorization of d: the
// edge-fault count under which Proposition 3.3 guarantees a fault-free
// Hamiltonian cycle.  For prime-power d, φ(d) = d−2, which is optimal.
func Phi(d int) int { return hamilton.EdgeFaultPhi(d) }

// MaxTolerableEdgeFaults returns MAX{ψ(d)−1, φ(d)}: the number of link
// failures under which EmbedRingEdgeFaults always succeeds (Table 3.2).
func MaxTolerableEdgeFaults(d int) int { return hamilton.MaxEdgeFaults(d) }

// DisjointHamiltonianCycles returns ψ(d) pairwise edge-disjoint Hamiltonian
// rings of the network (n ≥ 2).  Spreading ring traffic across them evens
// link load; the AllToAllBroadcast simulation quantifies the benefit.
func (g *Graph) DisjointHamiltonianCycles() ([]*Ring, error) {
	fam, err := hamilton.DisjointHCs(g.d, g.n)
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		rings[i] = &Ring{Nodes: g.g.NodesOfSequence(seq)}
	}
	return rings, nil
}

// EmbedRingEdgeFaults finds a Hamiltonian ring avoiding the given faulty
// links.  It succeeds for any fault set of size at most
// MaxTolerableEdgeFaults(d) (Proposition 3.4) and requires n ≥ 2.
func (g *Graph) EmbedRingEdgeFaults(faults []Edge) (*Ring, error) {
	windows := make([][]int, 0, len(faults))
	for _, e := range faults {
		if err := g.checkNodes([]int{e.From, e.To}); err != nil {
			return nil, err
		}
		if !g.g.IsEdge(e.From, e.To) {
			return nil, fmt.Errorf("debruijnring: (%s,%s) is not a network link",
				g.Label(e.From), g.Label(e.To))
		}
		w := make([]int, g.n+1)
		for i := 1; i <= g.n; i++ {
			w[i-1] = g.g.Digit(e.From, i)
		}
		w[g.n] = g.g.Digit(e.To, g.n)
		windows = append(windows, w)
	}
	seq, err := hamilton.FaultFreeHC(g.d, g.n, windows)
	if err != nil {
		return nil, err
	}
	return &Ring{Nodes: g.g.NodesOfSequence(seq)}, nil
}

// VerifyEdgeAvoidance reports whether the ring is a Hamiltonian cycle of
// the network using none of the given links.
func (g *Graph) VerifyEdgeAvoidance(r *Ring, faults []Edge) bool {
	if r == nil || !g.g.IsHamiltonian(r.Nodes) {
		return false
	}
	bad := make(map[Edge]bool, len(faults))
	for _, e := range faults {
		bad[e] = true
	}
	for i, v := range r.Nodes {
		if bad[Edge{From: v, To: r.Nodes[(i+1)%len(r.Nodes)]}] {
			return false
		}
	}
	return true
}

// DeBruijnSequence returns the digit sequence of a Hamiltonian ring — a
// De Bruijn sequence of order n over Z_d (§3.1: rings and circular
// sequences are two views of the same object).
func (g *Graph) DeBruijnSequence(r *Ring) []int {
	return g.g.SequenceOfNodes(r.Nodes)
}

// ModifiedDecomposition returns the Hamiltonian decomposition of the
// modified De Bruijn graph MB(d,n) (§3.2.3): d pairwise edge-disjoint
// Hamiltonian rings covering every processor, at the cost of rerouting one
// parallel link pair per ring through the corner nodes sⁿ.  Defined for
// odd prime powers d (n ≥ 2, with d = 3, n = 2 excluded) and d = 2
// (n ≥ 3).
func (g *Graph) ModifiedDecomposition() ([]*Ring, error) {
	cycles, err := hamilton.MBDecomposition(g.d, g.n)
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(cycles))
	for i, c := range cycles {
		rings[i] = &Ring{Nodes: c}
	}
	return rings, nil
}
