package debruijnring

import (
	"debruijnring/internal/hamilton"
	"debruijnring/topology"
)

// Edge is a directed network link from one processor to another.  It is
// the unified topology.Edge, so fault sets move freely between this
// package, the adapters and the engine.
type Edge = topology.Edge

// Psi returns ψ(d), the guaranteed number of pairwise edge-disjoint
// Hamiltonian cycles of B(d,n) for n ≥ 2 (Table 3.1).  ψ(d) = d−1 when d
// is a power of two, which is optimal.
func Psi(d int) int { return hamilton.Psi(d) }

// Phi returns φ(d) = Σ pᵢ^eᵢ − 2k over the prime factorization of d: the
// edge-fault count under which Proposition 3.3 guarantees a fault-free
// Hamiltonian cycle.  For prime-power d, φ(d) = d−2, which is optimal.
func Phi(d int) int { return hamilton.EdgeFaultPhi(d) }

// MaxTolerableEdgeFaults returns MAX{ψ(d)−1, φ(d)}: the number of link
// failures under which EmbedRingEdgeFaults always succeeds (Table 3.2).
func MaxTolerableEdgeFaults(d int) int { return hamilton.MaxEdgeFaults(d) }

// DisjointHamiltonianCycles returns ψ(d) pairwise edge-disjoint Hamiltonian
// rings of the network (n ≥ 2).  Spreading ring traffic across them evens
// link load; the AllToAllBroadcast simulation quantifies the benefit.
func (g *Graph) DisjointHamiltonianCycles() ([]*Ring, error) {
	fam, err := hamilton.DisjointHCs(g.d, g.n)
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(fam.Cycles))
	for i, seq := range fam.Cycles {
		rings[i] = &Ring{Nodes: g.g.NodesOfSequence(seq)}
	}
	return rings, nil
}

// EmbedRingEdgeFaults finds a Hamiltonian ring avoiding the given faulty
// links.  It succeeds for any fault set of size at most
// MaxTolerableEdgeFaults(d) (Proposition 3.4) and requires n ≥ 2.  It is
// the topology-generic adapter's edge-fault codepath.
func (g *Graph) EmbedRingEdgeFaults(faults []Edge) (*Ring, error) {
	cycle, _, err := g.net.EmbedRing(topology.EdgeFaults(faults...))
	if err != nil {
		return nil, err
	}
	return &Ring{Nodes: cycle}, nil
}

// VerifyEdgeAvoidance reports whether the ring is a Hamiltonian cycle of
// the network using none of the given links.  It is the shared
// topology.VerifyHamiltonian codepath specialized to link faults.
func (g *Graph) VerifyEdgeAvoidance(r *Ring, faults []Edge) bool {
	return r != nil && topology.VerifyHamiltonian(g.net, r.Nodes, topology.EdgeFaults(faults...))
}

// DeBruijnSequence returns the digit sequence of a Hamiltonian ring — a
// De Bruijn sequence of order n over Z_d (§3.1: rings and circular
// sequences are two views of the same object).
func (g *Graph) DeBruijnSequence(r *Ring) []int {
	return g.g.SequenceOfNodes(r.Nodes)
}

// ModifiedDecomposition returns the Hamiltonian decomposition of the
// modified De Bruijn graph MB(d,n) (§3.2.3): d pairwise edge-disjoint
// Hamiltonian rings covering every processor, at the cost of rerouting one
// parallel link pair per ring through the corner nodes sⁿ.  Defined for
// odd prime powers d (n ≥ 2, with d = 3, n = 2 excluded) and d = 2
// (n ≥ 3).
func (g *Graph) ModifiedDecomposition() ([]*Ring, error) {
	cycles, err := hamilton.MBDecomposition(g.d, g.n)
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(cycles))
	for i, c := range cycles {
		rings[i] = &Ring{Nodes: c}
	}
	return rings, nil
}
