package debruijnring

import (
	"fmt"

	"debruijnring/internal/butterfly"
	"debruijnring/topology"
)

// Butterfly is the d-ary wrapped butterfly network F(d,n) with n·dⁿ
// processors at n levels (§3.4).  Its nodes are coded level·dⁿ + column.
// It is a thin wrapper over the topology.Butterfly adapter.
type Butterfly struct {
	b   *butterfly.Graph
	net *topology.Butterfly
}

// NewButterfly returns F(d,n).
func NewButterfly(d, n int) (*Butterfly, error) {
	net, err := topology.NewButterfly(d, n)
	if err != nil {
		return nil, fmt.Errorf("debruijnring: invalid butterfly dimensions d=%d, n=%d", d, n)
	}
	return &Butterfly{b: net.Graph(), net: net}, nil
}

// Network returns the topology-generic adapter for this network.
func (f *Butterfly) Network() *topology.Butterfly { return f.net }

// Nodes returns the processor count n·dⁿ.
func (f *Butterfly) Nodes() int { return f.b.Size }

// Node codes the processor at the given level and column.
func (f *Butterfly) Node(level, column int) int { return f.b.Node(level, column) }

// Split decodes a processor id into (level, column).
func (f *Butterfly) Split(node int) (level, column int) { return f.b.Split(node) }

// Label renders a processor as "(level,column-word)".
func (f *Butterfly) Label(node int) string { return f.b.String(node) }

// EmbedRingEdgeFaults finds a Hamiltonian ring of F(d,n) avoiding the
// given faulty links, tolerating up to MaxTolerableEdgeFaults(d) failures
// (Proposition 3.5).  Requires gcd(d,n) = 1.
func (f *Butterfly) EmbedRingEdgeFaults(faults []Edge) (*Ring, error) {
	cycle, _, err := f.net.EmbedRing(topology.EdgeFaults(faults...))
	if err != nil {
		return nil, err
	}
	return &Ring{Nodes: cycle}, nil
}

// DisjointHamiltonianCycles returns ψ(d) pairwise edge-disjoint
// Hamiltonian rings of F(d,n) (Proposition 3.6).  Requires gcd(d,n) = 1.
func (f *Butterfly) DisjointHamiltonianCycles() ([]*Ring, error) {
	cycles, err := f.net.DisjointCycles()
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(cycles))
	for i, c := range cycles {
		rings[i] = &Ring{Nodes: c}
	}
	return rings, nil
}

// Verify reports whether the ring is a valid cycle of the butterfly that
// avoids the given faulty links.  It is the shared topology.VerifyRing
// codepath specialized to link faults.
func (f *Butterfly) Verify(r *Ring, faults []Edge) bool {
	return r != nil && topology.VerifyRing(f.net, r.Nodes, topology.EdgeFaults(faults...))
}
