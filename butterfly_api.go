package debruijnring

import (
	"fmt"

	"debruijnring/internal/butterfly"
)

// Butterfly is the d-ary wrapped butterfly network F(d,n) with n·dⁿ
// processors at n levels (§3.4).  Its nodes are coded level·dⁿ + column.
type Butterfly struct {
	b *butterfly.Graph
}

// NewButterfly returns F(d,n).
func NewButterfly(d, n int) (*Butterfly, error) {
	if d < 2 || n < 1 {
		return nil, fmt.Errorf("debruijnring: invalid butterfly dimensions d=%d, n=%d", d, n)
	}
	return &Butterfly{b: butterfly.New(d, n)}, nil
}

// Nodes returns the processor count n·dⁿ.
func (f *Butterfly) Nodes() int { return f.b.Size }

// Node codes the processor at the given level and column.
func (f *Butterfly) Node(level, column int) int { return f.b.Node(level, column) }

// Split decodes a processor id into (level, column).
func (f *Butterfly) Split(node int) (level, column int) { return f.b.Split(node) }

// Label renders a processor as "(level,column-word)".
func (f *Butterfly) Label(node int) string { return f.b.String(node) }

// EmbedRingEdgeFaults finds a Hamiltonian ring of F(d,n) avoiding the
// given faulty links, tolerating up to MaxTolerableEdgeFaults(d) failures
// (Proposition 3.5).  Requires gcd(d,n) = 1.
func (f *Butterfly) EmbedRingEdgeFaults(faults []Edge) (*Ring, error) {
	pairs := make([][2]int, len(faults))
	for i, e := range faults {
		pairs[i] = [2]int{e.From, e.To}
	}
	cycle, err := f.b.FaultFreeHC(pairs)
	if err != nil {
		return nil, err
	}
	return &Ring{Nodes: cycle}, nil
}

// DisjointHamiltonianCycles returns ψ(d) pairwise edge-disjoint
// Hamiltonian rings of F(d,n) (Proposition 3.6).  Requires gcd(d,n) = 1.
func (f *Butterfly) DisjointHamiltonianCycles() ([]*Ring, error) {
	cycles, err := f.b.DisjointHCs()
	if err != nil {
		return nil, err
	}
	rings := make([]*Ring, len(cycles))
	for i, c := range cycles {
		rings[i] = &Ring{Nodes: c}
	}
	return rings, nil
}

// Verify reports whether the ring is a valid cycle of the butterfly that
// avoids the given faulty links.
func (f *Butterfly) Verify(r *Ring, faults []Edge) bool {
	if r == nil || !f.b.IsCycle(r.Nodes) {
		return false
	}
	bad := make(map[Edge]bool, len(faults))
	for _, e := range faults {
		bad[e] = true
	}
	for i, v := range r.Nodes {
		if bad[Edge{From: v, To: r.Nodes[(i+1)%len(r.Nodes)]}] {
			return false
		}
	}
	return true
}
