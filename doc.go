// Package debruijnring embeds fault-tolerant rings in De Bruijn networks,
// implementing R. Rowley and B. Bose, "Fault-Tolerant Ring Embedding in
// De Bruijn Networks" (ICPP 1991; thesis and IEEE ToC 42(12) versions).
//
// The d-ary De Bruijn network B(d,n) connects dⁿ processors, each labeled
// by an n-digit word over Z_d, with links x₁x₂…xₙ → x₂…xₙα.  This package
// answers two questions about it:
//
//   - Node failures (Chapter 2): after up to d−2 processors fail, a ring of
//     length at least dⁿ − nf survives and can be found by a distributed
//     algorithm in Θ(n) communication rounds.  See Graph.EmbedRing and
//     Graph.EmbedRingDistributed.
//
//   - Link failures (Chapter 3): B(d,n) carries ψ(d) pairwise edge-disjoint
//     Hamiltonian cycles (d−1 of them when d is a power of two), and a
//     fault-free Hamiltonian cycle survives any MAX{ψ(d)−1, φ(d)} link
//     failures — optimal (d−2) for prime-power d.  See
//     Graph.DisjointHamiltonianCycles and Graph.EmbedRingEdgeFaults.
//
// # The topology-generic surface
//
// The machinery transfers beyond B(d,n) — to wrapped butterflies when
// gcd(d,n) = 1 (§3.4), shuffle-exchange networks (dilation 2), Kautz
// graphs (Chapter 5, measured exhaustively) and the hypercube baseline
// ([WC92, CL91a]).  The topology subpackage abstracts all of them behind
// one Network interface with a unified FaultSet covering processor and
// link failures together:
//
//	net, _ := topology.FromSpec("debruijn(4,6)")   // or kautz(2,4),
//	// shuffleexchange(3,3), butterfly(3,4), hypercube(12), …
//	ring, info, _ := net.EmbedRing(topology.FaultSet{Nodes: []int{7, 77}})
//	ok := topology.VerifyRing(net, ring, topology.NodeFaults(7, 77))
//
// A FaultSet holds failed processors (Nodes) and failed links (Edges)
// at once.  Each topology dispatches the classes it supports: De Bruijn
// serves node faults (FFC), link faults (§3 Hamiltonian families) and —
// best-effort — mixed sets; shuffle-exchange and hypercube serve node
// faults; butterfly and Kautz serve link faults.  Canonicalization
// (FaultSet.Key) makes fault sets order- and duplicate-insensitive, and
// topology.VerifyRing / VerifyHamiltonian are the single shared
// verification codepath for every topology.
//
// The engine subpackage serves these requests at scale: a concurrent
// embedding engine with an LRU cache keyed by (topology, canonical fault
// set), in-flight deduplication, batched execution across a worker pool
// and per-request statistics:
//
//	eng := engine.New(engine.Options{})
//	res, _ := eng.EmbedRing(ctx, engine.Request{
//		Spec:   "debruijn(4,6)",
//		Faults: topology.NodeFaults(7, 77),
//	})
//	// res.Stats: cache hit, ring length vs. the dⁿ − nf bound,
//	// broadcast rounds, dilation, elapsed time.
//
// Command ringsrv exposes the engine as an HTTP/JSON service (embed,
// verify, disjoint-cycles, broadcast-simulation endpoints, plus a stats
// endpoint reporting cache hit rate and p50/p99 embed latency); command
// ringembed adds a -batch mode over JSON-lines request files.
//
// # Online fault streams
//
// The batch path answers one fault set at a time; the session
// subsystem models the paper's actual regime, where faults arrive —
// and heal — after the ring is embedded.  A session (package session)
// holds a named topology, its current ring and a live FaultSet with a
// bidirectional lifecycle:
//
//	mgr := session.NewManager(eng, session.Options{Dir: "/var/lib/rings"})
//	s, _ := mgr.Create("prod", "debruijn(2,10)", topology.FaultSet{})
//	ev, _ := s.AddFaults(topology.NodeFaults(x))      // ev.Repair: "local" | "reembed" | "noop"
//	ev, _ = s.RemoveFaults(topology.NodeFaults(x))    // heal: the ring grows back
//
// Both directions attempt a local repair first (package
// internal/repair), by surgery on the FFC algorithm's own structures.
// A faulty necklace is spliced out of the live ring — detach it from
// its star, re-parent orphaned children along surviving shift-edge
// windows, re-close only the touched w-cycles; a faulted ring LINK
// between healthy processors is absorbed by reordering window choices
// within the touched star (Proposition 2.1 holds for any single-cycle
// member order); and RemoveFaults reverses the surgery, re-expanding a
// repaired necklace into the tree.  Each patch is O(touched stars)
// work and preserves the dⁿ − nf bound for the current fault count.  A
// full Embedder re-embed runs only when the patch fails or the paper's
// f ≤ n tolerance is exceeded.  Every transition is appended to a
// journal ("fault" and "heal" events with ring hashes, periodic
// snapshots), so a killed server restores each session to a
// bit-identical ring; the engine's stats report the patch hit rate and
// the heal-direction unpatch hit rate.
//
// Over HTTP, ringsrv serves /v1/sessions (CRUD), …/faults (POST
// absorbs a fault batch, DELETE re-admits a repaired one) and …/watch
// (ring deltas via long-poll or SSE).  Command chaos replays
// randomized or recorded lifecycle traces against a server — including
// heal events via -heal-rate, soak runs via -soak, and client-side
// verify/divergence checking via -check — and reports
// repair-vs-recompute latency and the ring-length degradation curve;
// see examples/faultstream for the in-process view.
//
// # The session fleet
//
// One process is a ceiling, so the fleet package shards sessions
// horizontally: ringsrv doubles as a shard worker (fleet.Shard wires
// the manager over a pluggable session.Store and, with -replicate-to,
// synchronously ships every journal event to a standby replica before
// the client's ack), and command ringfleet fronts N shard groups with
// a consistent-hash router (fleet.Router) that proxies all
// /v1/sessions traffic — SSE watch streams included — to the shard
// owning each session name.  When a primary dies the router promotes
// its replica, which restores the replicated journals through the
// same deterministic hash-verified replay as a local restart, so an
// acknowledged event is never lost across a shard kill; chaos
// -sessions drives many concurrent session streams through the router
// to exercise exactly that path.
//
// The fleet also heals and grows without restarts: after a promotion
// the router draws a standby from its -spare pool and re-replicates
// the promoted shard onto it (so a second failure is survivable), a
// returning stale primary is fenced by per-shard epoch gates and
// demotes itself to a clean standby, and POST /v1/fleet/shards adds a
// shard group at runtime — the moved keyspace is drained (clients see
// retryable 503s), each moved session's journal is handed off and
// hash-verified on the new owner, then routing flips.  Two routers
// with the same configuration can front one fleet behind a VIP for
// router HA; the epoch gates make their uncoordinated control
// operations last-writer-wins.  chaos -rebalance exercises the
// membership change under live load.
//
// # Performance
//
// The embedding, verification and Monte-Carlo simulation hot paths run
// on dense, allocation-free kernels: epoch-stamped flat scratch arrays
// (internal/dense) with O(1) reset replace the per-call maps of the
// original implementation, ffc.Embedder carries reusable per-goroutine
// scratch (pooled by the De Bruijn adapter), and ffc.Simulate shards
// trials across a worker pool with per-trial PCG streams whose output
// is bit-identical for a fixed seed at any worker count.  PERF.md
// documents the design and records the benchmark baselines; command
// benchjson emits the machine-readable BENCH_*.json artifacts the CI
// smoke job produces on every push.
//
// # Quick start
//
//	g, _ := debruijnring.New(4, 6)            // 4096-node network
//	ring, stats, _ := g.EmbedRing([]int{faulty1, faulty2})
//	// ring.Nodes is a cycle over the surviving processors,
//	// len(ring.Nodes) ≥ 4096 − 6·2 = 4084.
//
// The concrete types remain thin wrappers over the adapters —
// Graph.Network() and Butterfly.Network() expose the topology-generic
// view — and the necklace-counting formulas of Chapter 4 stay on this
// package (NecklaceCount and friends).
//
// All unit-dilation embeddings return rings that are subgraphs of the
// (faulty) network; the shuffle-exchange transfer has dilation 2 with
// congestion 1 per directed channel.
package debruijnring
