// Package debruijnring embeds fault-tolerant rings in De Bruijn networks,
// implementing R. Rowley and B. Bose, "Fault-Tolerant Ring Embedding in
// De Bruijn Networks" (ICPP 1991; thesis and IEEE ToC 42(12) versions).
//
// The d-ary De Bruijn network B(d,n) connects dⁿ processors, each labeled
// by an n-digit word over Z_d, with links x₁x₂…xₙ → x₂…xₙα.  This package
// answers two questions about it:
//
//   - Node failures (Chapter 2): after up to d−2 processors fail, a ring of
//     length at least dⁿ − nf survives and can be found by a distributed
//     algorithm in Θ(n) communication rounds.  See Graph.EmbedRing and
//     Graph.EmbedRingDistributed.
//
//   - Link failures (Chapter 3): B(d,n) carries ψ(d) pairwise edge-disjoint
//     Hamiltonian cycles (d−1 of them when d is a power of two), and a
//     fault-free Hamiltonian cycle survives any MAX{ψ(d)−1, φ(d)} link
//     failures — optimal (d−2) for prime-power d.  See
//     Graph.DisjointHamiltonianCycles and Graph.EmbedRingEdgeFaults.
//
// The same machinery transfers to wrapped butterfly networks when
// gcd(d,n) = 1 (§3.4, see Butterfly) and powers the necklace-counting
// formulas of Chapter 4 (NecklaceCount and friends).  A hypercube baseline
// (HypercubeRing) reproduces the paper's comparison against [WC92, CL91a].
//
// # Quick start
//
//	g, _ := debruijnring.New(4, 6)            // 4096-node network
//	ring, stats, _ := g.EmbedRing([]int{faulty1, faulty2})
//	// ring.Nodes is a cycle over the surviving processors,
//	// len(ring.Nodes) ≥ 4096 − 6·2 = 4084.
//
// All embeddings have unit dilation and congestion: returned rings are
// subgraphs of the (faulty) network.
package debruijnring
