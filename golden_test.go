package debruijnring

import (
	"testing"

	"debruijnring/topology"
)

// The golden tests pin the new Network-interface codepath to the legacy
// per-type methods: for each topology, EmbedRing through the adapter
// must reproduce exactly what the original API returns.

func TestGoldenDeBruijnNodeFaults(t *testing.T) {
	g, _ := New(3, 3)
	a, _ := g.Node("020")
	b, _ := g.Node("112")

	legacy, stats, err := g.EmbedRing([]int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	ring, info, err := g.Network().EmbedRing(topology.NodeFaults(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(legacy.Nodes, ring) {
		t.Errorf("adapter ring differs from legacy:\n%v\n%v", legacy.Nodes, ring)
	}
	if info.RingLength != legacy.Len() || info.LowerBound != stats.LowerBound ||
		info.Rounds != stats.Eccentricity || info.Survivors != stats.BStarSize {
		t.Errorf("adapter info %+v vs legacy stats %+v", info, stats)
	}
}

func TestGoldenDeBruijnEdgeFaults(t *testing.T) {
	g, _ := New(5, 2)
	u, _ := g.Node("01")
	var faults []Edge
	for _, v := range g.Neighbors(u) {
		faults = append(faults, Edge{From: u, To: v})
		if len(faults) == MaxTolerableEdgeFaults(5) {
			break
		}
	}
	legacy, err := g.EmbedRingEdgeFaults(faults)
	if err != nil {
		t.Fatal(err)
	}
	ring, info, err := g.Network().EmbedRing(topology.EdgeFaults(faults...))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(legacy.Nodes, ring) {
		t.Error("adapter edge-fault ring differs from legacy")
	}
	if info.LowerBound != g.Nodes() {
		t.Errorf("within tolerance, bound should be Hamiltonian %d, got %d", g.Nodes(), info.LowerBound)
	}
}

func TestGoldenButterflyEdgeFaults(t *testing.T) {
	f, _ := NewButterfly(3, 2)
	base, err := f.EmbedRingEdgeFaults(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := Edge{From: base.Nodes[0], To: base.Nodes[1]}

	legacy, err := f.EmbedRingEdgeFaults([]Edge{bad})
	if err != nil {
		t.Fatal(err)
	}
	ring, _, err := f.Network().EmbedRing(topology.EdgeFaults(bad))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(legacy.Nodes, ring) {
		t.Error("adapter butterfly ring differs from legacy")
	}
	if !topology.VerifyHamiltonian(f.Network(), ring, topology.EdgeFaults(bad)) {
		t.Error("butterfly ring fails shared verification")
	}
}

func TestGoldenHypercubeNodeFaults(t *testing.T) {
	legacy, err := HypercubeRing(6, []int{7, 56})
	if err != nil {
		t.Fatal(err)
	}
	net, _ := topology.NewHypercube(6)
	ring, info, err := net.EmbedRing(topology.NodeFaults(7, 56))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(legacy, ring) {
		t.Error("adapter hypercube ring differs from legacy")
	}
	if info.LowerBound != 64-4 {
		t.Errorf("bound = %d, want 60", info.LowerBound)
	}
	if !topology.VerifyRing(net, ring, topology.NodeFaults(7, 56)) {
		t.Error("hypercube ring fails shared verification")
	}
}

func TestGoldenShuffleExchangeNodeFaults(t *testing.T) {
	g, _ := New(3, 3)
	a, _ := g.Node("020")
	legacy, err := EmbedRingShuffleExchange(3, 3, []int{a})
	if err != nil {
		t.Fatal(err)
	}
	net, _ := topology.NewShuffleExchange(3, 3)
	walk, info, err := net.EmbedRing(topology.NodeFaults(a))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(legacy.Walk, walk) {
		t.Error("adapter SE walk differs from legacy")
	}
	if info.Dilation != legacy.Dilation() {
		t.Errorf("dilation %d vs legacy %d", info.Dilation, legacy.Dilation())
	}
}

// TestGoldenVerifyAgreesWithLegacy cross-checks the shared verification
// helper against the legacy per-type Verify methods on both valid and
// corrupted rings.
func TestGoldenVerifyAgreesWithLegacy(t *testing.T) {
	g, _ := New(3, 3)
	a, _ := g.Node("020")
	ring, _, err := g.EmbedRing([]int{a})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		ring   *Ring
		faults []int
	}{
		{ring, []int{a}},
		{ring, []int{ring.Nodes[0]}},             // fault on the ring
		{&Ring{Nodes: []int{0, 1}}, nil},         // not a cycle
		{&Ring{Nodes: ring.Nodes[:5]}, []int{a}}, // broken wrap-around
		{nil, nil},                               // nil ring
	}
	for i, tc := range cases {
		var generic bool
		if tc.ring != nil {
			generic = topology.VerifyRing(g.Network(), tc.ring.Nodes, topology.NodeFaults(tc.faults...))
		}
		if legacy := g.Verify(tc.ring, tc.faults); legacy != generic {
			t.Errorf("case %d: legacy Verify = %v, shared VerifyRing = %v", i, legacy, generic)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
